// dgc-run — the command-line front end of the framework, mirroring the
// paper's Fig. 5c invocation:
//
//   dgc-run xsbench -f arguments.txt -n 4 -t 128
//
// plus quality-of-life flags: device selection, single-instance mode, the
// argument-script language, stats reporting, and app discovery.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/argfile.h"
#include "ensemble/argscript.h"
#include "ensemble/experiment.h"
#include "ensemble/loader.h"
#include "ensemble/metrics.h"
#include "gpusim/device.h"
#include "gpusim/faults.h"
#include "gpusim/memcheck.h"
#include "gpusim/profiler.h"
#include "gpusim/trace.h"
#include "support/argparse.h"
#include "support/str.h"
#include "support/thread_pool.h"
#include "support/units.h"

using namespace dgc;

namespace {

int ListApps() {
  std::printf("device-compiled applications:\n");
  for (const std::string& name : dgcf::AppRegistry::Instance().Names()) {
    auto info = dgcf::AppRegistry::Instance().Find(name);
    std::printf("  %-12s %s\n", name.c_str(), (*info)->description.c_str());
  }
  return 0;
}

StatusOr<sim::DeviceSpec> PickDevice(const std::string& name,
                                     std::int64_t memory_scale) {
  const std::uint32_t scale = std::uint32_t(memory_scale);
  if (name == "a100") return sim::DeviceSpec::A100_40GB(scale);
  if (name == "v100") return sim::DeviceSpec::V100_16GB(scale);
  if (name == "test") return sim::DeviceSpec::TestDevice();
  return Status(ErrorCode::kInvalidArgument,
                "unknown device '" + name + "' (a100, v100, test)");
}

void PrintOutcome(const dgcf::RunResult& run, const sim::DeviceSpec& spec,
                  const dgcf::RpcHost& rpc, const dgcf::DeviceLibc& libc,
                  bool stats, bool memcheck) {
  if (!rpc.stdout_text().empty()) {
    std::printf("%s", rpc.stdout_text().c_str());
  }
  for (std::size_t i = 0; i < run.instances.size(); ++i) {
    const dgcf::InstanceResult& inst = run.instances[i];
    if (!inst.completed) {
      std::printf("instance %zu: FAILED (%s)%s%s after %u attempt(s)\n", i,
                  std::string(dgcf::ToString(inst.reason)).c_str(),
                  inst.detail.empty() ? "" : ": ",
                  inst.detail.c_str(), inst.attempts);
    } else if (inst.exit_code != 0) {
      std::printf("instance %zu: exit %d\n", i, inst.exit_code);
    } else if (inst.attempts > 1) {
      std::printf("instance %zu: recovered on attempt %u\n", i, inst.attempts);
    }
  }
  std::printf("%zu instance(s) in %u launch wave(s), kernel %s cycles (%s), "
              "transfers %s cycles\n",
              run.instances.size(), run.waves,
              FormatCount(run.kernel_cycles).c_str(),
              FormatSeconds(spec.CyclesToSeconds(run.kernel_cycles)).c_str(),
              FormatCount(run.transfer_cycles).c_str());
  if (stats) std::printf("\n%s", run.stats.ToString().c_str());
  if (stats || libc.failed_allocations() != 0 || libc.failed_frees() != 0) {
    std::printf("device heap: %s live, %s failed mallocs, %s failed frees\n",
                FormatCount(libc.live_allocations()).c_str(),
                FormatCount(libc.failed_allocations()).c_str(),
                FormatCount(libc.failed_frees()).c_str());
  }
  if (memcheck) {
    std::printf("\n%s", run.memcheck.ToString().c_str());
  }
  for (const std::string& f : run.failures) {
    std::fprintf(stderr, "device failure: %s\n", f.c_str());
  }
}

/// Finds a `-x <value>` / `--long <value>` integer among the loader args
/// (the tool does not re-parse them; it only needs a couple of values for
/// the metrics header). Returns `fallback` when absent or malformed.
std::int64_t PeekLoaderInt(const std::vector<std::string>& loader_args,
                           const std::string& short_flag,
                           const std::string& long_flag,
                           std::int64_t fallback) {
  for (std::size_t i = 0; i + 1 < loader_args.size(); ++i) {
    if (loader_args[i] == short_flag || loader_args[i] == long_flag) {
      auto v = ParseInt(loader_args[i + 1]);
      if (v.ok()) return *v;
    }
  }
  return fallback;
}

/// --profile: human-readable per-instance summary plus the timeline's peak
/// DRAM bandwidth occupancy (the §4.3 saturation signal at a glance).
void PrintProfile(const dgcf::RunResult& run, const sim::Profiler& profiler) {
  std::printf("\nprofile: per-instance counters\n");
  std::printf("%9s %12s %12s %12s %10s %10s %10s %10s %7s\n", "instance",
              "cycles", "instr", "dram-bytes", "dram-q", "l2-q", "barrier",
              "mem-peak", "allocs");
  for (const sim::InstanceStats& entry : run.instance_stats) {
    const sim::LaunchStats& s = entry.stats;
    if (entry.instance < 0 && s.warp_instructions == 0 && s.dram_bytes == 0) {
      continue;  // nothing landed in the unattributed slot; skip the row
    }
    std::uint64_t mem_peak = 0, mem_allocs = 0;
    if (entry.instance >= 0 &&
        std::size_t(entry.instance) < run.instances.size()) {
      mem_peak = run.instances[std::size_t(entry.instance)].mem_peak_bytes;
      mem_allocs = run.instances[std::size_t(entry.instance)].mem_allocations;
    }
    std::printf("%9s %12s %12s %12s %10s %10s %10s %10s %7s\n",
                entry.instance < 0
                    ? "(none)"
                    : StrFormat("%d", entry.instance).c_str(),
                FormatCount(s.elapsed_cycles).c_str(),
                FormatCount(s.warp_instructions).c_str(),
                FormatBytes(s.dram_bytes).c_str(),
                FormatCount(s.dram_queue_cycles).c_str(),
                FormatCount(s.l2_queue_cycles).c_str(),
                FormatCount(s.barrier_stall_cycles).c_str(),
                FormatBytes(mem_peak).c_str(),
                FormatCount(mem_allocs).c_str());
  }
  const sim::DeviceMemSnapshot& mem = run.device_mem;
  std::printf("device memory: peak %s of %s, %s allocation(s)",
              FormatBytes(mem.peak_bytes).c_str(),
              FormatBytes(mem.capacity).c_str(),
              FormatCount(mem.allocation_count).c_str());
  if (mem.shared_materialized != 0 || mem.shared_attaches != 0) {
    std::printf("; shared segments: %s materialized, %s attach(es), %s saved",
                FormatCount(mem.shared_materialized).c_str(),
                FormatCount(mem.shared_attaches).c_str(),
                FormatBytes(mem.shared_bytes_saved).c_str());
  }
  std::printf("\n");
  double peak_dram = 0.0, peak_l2 = 0.0;
  for (const sim::TimelineSample& s : profiler.timeline()) {
    peak_dram = std::max(peak_dram, s.dram_bw_occupancy);
    peak_l2 = std::max(peak_l2, s.l2_bw_occupancy);
  }
  std::printf("timeline: %zu sample(s)", profiler.timeline().size());
  if (profiler.dropped_samples() != 0) {
    std::printf(" (%llu dropped)",
                (unsigned long long)profiler.dropped_samples());
  }
  std::printf(", peak DRAM bw occupancy %.2f, peak L2 bw occupancy %.2f\n",
              peak_dram, peak_l2);
}

/// --sweep mode: the Fig. 6 methodology from the command line. Runs the app
/// at each instance count (first must be 1 — it defines T1) on a fresh
/// device per point, `jobs` points concurrently, and prints the paper-style
/// speedup table. Output is identical for every job count.
int RunSweepMode(const std::string& app,
                 const std::vector<std::string>& loader_args,
                 const std::vector<std::uint32_t>& counts, std::uint32_t jobs,
                 const std::string& csv_path, const sim::DeviceSpec& spec,
                 bool profile, const std::string& metrics_prefix,
                 std::uint64_t profile_interval) {
  std::string file;
  std::int64_t threads = 1024, per_block = 1, seed = 0;
  bool script = false;
  std::string inject;
  std::int64_t watchdog = 0, instance_watchdog = 0;
  std::int64_t retry = 1, retry_shrink = 2;
  std::int64_t launch_threads = 1;
  std::int64_t launch_window = 0;
  std::string share_data = "on";
  ArgParser parser("ensemble sweep (Fig. 6 methodology)");
  parser.AddString("file", 'f', "command line arguments file", &file,
                   /*required=*/true)
      .AddInt("thread-limit", 't', "max threads per instance", &threads)
      .AddInt("teams-per-block", 'm', "instances per thread block (§3.1)",
              &per_block)
      .AddFlag("script", 0, "treat the file as an argument script", &script)
      .AddInt("seed", 0, "argument-script random seed", &seed)
      .AddString("inject", 0, "deterministic fault-injection spec", &inject)
      .AddInt("watchdog", 0, "launch cycle budget (0 = device default)",
              &watchdog)
      .AddInt("instance-watchdog", 0, "per-instance cycle budget (0 = off)",
              &instance_watchdog)
      .AddInt("retry", 0, "max launch attempts per failed instance", &retry)
      .AddInt("retry-shrink", 0, "team-cap divisor per retry wave",
              &retry_shrink)
      .AddString("share-data", 0,
                 "share read-only input data across identical instances "
                 "(on|off, default on)",
                 &share_data)
      .AddInt("launch-threads", 0,
              "host threads simulating each launch (deterministic; 1 = "
              "serial)",
              &launch_threads)
      .AddInt("launch-window", 0,
              "speculation window in cycles for the threaded engine "
              "(0 = engine default; any value is byte-identical)",
              &launch_window);
  const Status parsed = parser.Parse(loader_args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "dgc-run: %s\n", parsed.ToString().c_str());
    return 2;
  }
  if (share_data != "on" && share_data != "off") {
    std::fprintf(stderr, "dgc-run: --share-data must be 'on' or 'off'\n");
    return 2;
  }
  if (threads <= 0 || per_block <= 0 || watchdog < 0 ||
      instance_watchdog < 0 || retry <= 0 || retry_shrink < 0 ||
      launch_threads <= 0 || launch_window < 0) {
    std::fprintf(stderr, "dgc-run: counts must be positive\n");
    return 2;
  }

  auto lines = script ? [&]() -> StatusOr<std::vector<std::vector<std::string>>> {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kNotFound, "cannot open script file: " + file);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return ensemble::ExpandScriptToArgs(buffer.str(), std::uint64_t(seed));
  }()
                      : ensemble::LoadArgumentFile(file);
  if (!lines.ok()) {
    std::fprintf(stderr, "dgc-run: %s\n", lines.status().ToString().c_str());
    return 2;
  }
  std::uint32_t max_count = 0;
  for (std::uint32_t n : counts) max_count = std::max(max_count, n);
  if (max_count > lines->size()) {
    std::fprintf(stderr,
                 "dgc-run: --sweep needs %u argument lines but '%s' provides "
                 "only %zu\n",
                 max_count, file.c_str(), lines->size());
    return 2;
  }

  ensemble::ExperimentConfig cfg;
  cfg.app = app;
  cfg.args_for_instance = [lines = *lines](std::uint32_t i) {
    return lines[i];
  };
  cfg.instance_counts = counts;
  cfg.thread_limit = std::uint32_t(threads);
  cfg.teams_per_block = std::uint32_t(per_block);
  cfg.spec = spec;
  cfg.inject_spec = inject;  // parsed fresh per point (determinism)
  cfg.watchdog_cycles = std::uint64_t(watchdog);
  cfg.instance_watchdog_cycles = std::uint64_t(instance_watchdog);
  cfg.max_attempts = std::uint32_t(retry);
  cfg.retry_shrink = std::uint32_t(retry_shrink);
  cfg.share_data = share_data == "on";
  cfg.launch_threads = unsigned(launch_threads);
  cfg.launch_window_cycles = std::uint64_t(launch_window);
  cfg.profile = profile || !metrics_prefix.empty();
  cfg.profile_interval = profile_interval;

  ensemble::SweepOptions options;
  options.jobs = jobs;
  options.progress = [](const ensemble::SweepPointEvent& e) {
    if (e.kind == ensemble::SweepPointEvent::Kind::kFinished) {
      std::fprintf(stderr, "[sweep] n=%u %s in %.2fs (%zu/%zu finished)\n",
                   e.instances, e.ran ? "finished" : "skipped", e.wall_seconds,
                   e.points_finished, e.points_total);
    }
  };

  auto series = ensemble::MeasureSpeedup(cfg, options);
  if (!series.ok()) {
    std::fprintf(stderr, "dgc-run: %s\n", series.status().ToString().c_str());
    return 2;
  }
  std::printf("%s speedup sweep, thread limit %u, device %s\n\n",
              app.c_str(), cfg.thread_limit, spec.name.c_str());
  std::printf("%s", ensemble::FormatSpeedupTable({*series}).c_str());
  for (const ensemble::SpeedupPoint& p : series->points) {
    if (!p.ran && !p.note.empty()) {
      std::printf("n=%u skipped: %s\n", p.instances, p.note.c_str());
    }
  }
  if (!csv_path.empty()) {
    const Status s = ensemble::WriteSpeedupCsv({*series}, csv_path);
    if (!s.ok()) {
      std::fprintf(stderr, "csv export failed: %s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("csv written: %s\n", csv_path.c_str());
  }
  if (!metrics_prefix.empty()) {
    // One sidecar per measured point. The documents come straight from the
    // sweep's pre-assigned slots, so they are byte-identical for any --jobs.
    for (const ensemble::SpeedupPoint& p : series->points) {
      if (!p.ran || p.metrics_json.empty()) continue;
      const std::string path =
          StrFormat("%s.n%u.json", metrics_prefix.c_str(), p.instances);
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "metrics export failed: cannot write %s\n",
                     path.c_str());
        return 2;
      }
      out << p.metrics_json;
      std::printf("metrics written: %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  apps::RegisterAllApps();

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::printf(
        "usage: dgc-run <app> [options]          run an ensemble (Fig. 5c)\n"
        "       dgc-run --list                   list registered apps\n\n"
        "options forwarded to the ensemble loader:\n"
        "  -f <file>      command line arguments file (required)\n"
        "  -n <count>     instances to launch simultaneously\n"
        "  -t <threads>   thread limit per instance (default 1024)\n"
        "  -m <count>     instances per thread block (default 1)\n"
        "  --teams <n>    teams (default: one per instance)\n"
        "  --script       treat -f file as an argument script\n"
        "  --seed <n>     argument-script random seed\n"
        "  --inject <spec>  deterministic fault injection, e.g.\n"
        "                 'seed@7;malloc-fail@3;trap@b0.w1.c5000' (see\n"
        "                 docs/MODEL.md, Failure semantics)\n"
        "  --watchdog <cycles>  launch cycle budget; still-running lanes\n"
        "                 trap when it expires (0 = device default)\n"
        "  --instance-watchdog <cycles>  per-instance budget (0 = off)\n"
        "  --retry <n>    max launch attempts per failed instance\n"
        "                 (default 1 = no retry)\n"
        "  --retry-shrink <n>  divide the team cap by <n> each retry wave\n"
        "                 (default 2)\n"
        "  --share-data <on|off>  share read-only input segments across\n"
        "                 instances with identical workloads (default on;\n"
        "                 off reproduces the duplicated per-instance layout)\n"
        "  --launch-threads <n>  host threads simulating each launch wave\n"
        "                 (default 1 = serial engine). Deterministic: stats,\n"
        "                 metrics JSON, and traces are byte-identical for\n"
        "                 every value. Multi-warp blocks speculate too; with\n"
        "                 --inject only turns at a pending trap site\n"
        "                 serialize. Clamped to the device SM count and the\n"
        "                 host's hardware threads\n"
        "  --launch-window <cycles>  speculation window for the threaded\n"
        "                 engine (0 = engine default, 2048); any value\n"
        "                 yields byte-identical output\n\n"
        "tool options (must precede the loader options):\n"
        "  --device <d>   a100 (default), v100, or test\n"
        "  --memory-scale <n>  capacity scale divisor (default 512)\n"
        "  --stats        print simulator statistics\n"
        "  --memcheck     run the shadow-memory sanitizer; findings are\n"
        "                 reported and make the run exit nonzero\n"
        "  --trace <path> write a chrome://tracing JSON of the kernel\n"
        "  --trace-capacity <n>  max trace events kept (default 1048576);\n"
        "                 overflow is dropped and reported\n"
        "  --profile      per-instance counter attribution + utilization\n"
        "                 timeline, printed as a table\n"
        "  --metrics-json <path>  write the dgc-metrics-v1 JSON document\n"
        "                 (implies profiling); with --sweep, <path> is a\n"
        "                 prefix — one <path>.n<count>.json per point\n"
        "  --profile-interval <cycles>  timeline sample interval\n"
        "                 (default 8192)\n"
        "  --sweep <n1,n2,...>  Fig. 6 mode: measure speedup at each\n"
        "                 instance count (first must be 1) instead of one\n"
        "                 run; prints the paper-style table\n"
        "  --csv <path>   with --sweep: also export the series as CSV\n"
        "  --jobs <n>     with --sweep: concurrent sweep points (default:\n"
        "                 hardware threads; 1 = serial, same output)\n");
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "--list") return ListApps();

  const std::string app = args[0];
  args.erase(args.begin());

  // Split off tool options (anything before the first loader flag we know).
  std::string device_name = "a100";
  std::string trace_path;
  std::string csv_path;
  std::string metrics_path;
  std::int64_t memory_scale = 512;
  std::int64_t trace_capacity = 1 << 20;
  std::int64_t profile_interval = 0;
  std::uint32_t jobs = ThreadPool::DefaultThreads();
  std::vector<std::uint32_t> sweep_counts;
  bool stats = false;
  bool memcheck_on = false;
  bool profile = false;
  std::vector<std::string> loader_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--device" && i + 1 < args.size()) {
      device_name = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--trace-capacity" && i + 1 < args.size()) {
      auto v = ParseInt(args[++i]);
      if (!v.ok() || *v <= 0) {
        std::fprintf(stderr, "bad --trace-capacity\n");
        return 2;
      }
      trace_capacity = *v;
    } else if (args[i] == "--memory-scale" && i + 1 < args.size()) {
      auto v = ParseInt(args[++i]);
      if (!v.ok() || *v <= 0) {
        std::fprintf(stderr, "bad --memory-scale\n");
        return 2;
      }
      memory_scale = *v;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      auto v = ParseInt(args[++i]);
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr, "bad --jobs (want a count >= 1)\n");
        return 2;
      }
      jobs = std::uint32_t(*v);
    } else if (args[i] == "--sweep" && i + 1 < args.size()) {
      for (std::string_view part : SplitChar(args[++i], ',')) {
        auto v = ParseInt(part);
        if (!v.ok() || *v < 1) {
          std::fprintf(stderr, "bad --sweep list (want counts >= 1)\n");
          return 2;
        }
        sweep_counts.push_back(std::uint32_t(*v));
      }
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      csv_path = args[++i];
    } else if (args[i] == "--metrics-json" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--profile-interval" && i + 1 < args.size()) {
      auto v = ParseInt(args[++i]);
      if (!v.ok() || *v <= 0) {
        std::fprintf(stderr, "bad --profile-interval\n");
        return 2;
      }
      profile_interval = *v;
    } else if (args[i] == "--stats") {
      stats = true;
    } else if (args[i] == "--memcheck") {
      memcheck_on = true;
    } else if (args[i] == "--profile") {
      profile = true;
    } else {
      loader_args.push_back(args[i]);
    }
  }

  // Validate any --inject plan up front, before a device is built, files
  // are read, or sweep points spin up: a typo in the fault grammar must be
  // a usage error, not a mid-run abort.
  for (std::size_t i = 0; i + 1 < loader_args.size(); ++i) {
    if (loader_args[i] != "--inject") continue;
    if (auto plan = sim::FaultPlan::Parse(loader_args[i + 1]); !plan.ok()) {
      std::fprintf(stderr,
                   "dgc-run: bad --inject spec: %s\n"
                   "usage: --inject "
                   "'seed@7;malloc-fail@3;trap@b0.w1.c5000' (see docs/"
                   "MODEL.md, Failure semantics)\n",
                   plan.status().ToString().c_str());
      return 2;
    }
  }

  // Same up-front treatment for the threaded-engine knobs: they are loader
  // options, but a bad count should be a usage error before any work runs.
  std::int64_t launch_threads_requested = 0;
  for (std::size_t i = 0; i + 1 < loader_args.size(); ++i) {
    if (loader_args[i] == "--launch-threads") {
      auto v = ParseInt(loader_args[i + 1]);
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr,
                     "dgc-run: bad --launch-threads '%s'\n"
                     "usage: --launch-threads <n> with n >= 1 "
                     "(1 = serial engine)\n",
                     loader_args[i + 1].c_str());
        return 2;
      }
      launch_threads_requested = *v;
    } else if (loader_args[i] == "--launch-window") {
      auto v = ParseInt(loader_args[i + 1]);
      if (!v.ok() || *v < 0) {
        std::fprintf(stderr,
                     "dgc-run: bad --launch-window '%s'\n"
                     "usage: --launch-window <cycles> with cycles >= 0 "
                     "(0 = engine default)\n",
                     loader_args[i + 1].c_str());
        return 2;
      }
    }
  }

  auto spec = PickDevice(device_name, memory_scale);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  // Output is byte-identical for any thread count, so clamping is a
  // perf-only surprise — worth one line so a benchmarking user is not left
  // wondering why 32 threads perform like 4.
  if (launch_threads_requested > 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned cap = std::min(unsigned(spec->num_sms),
                                  hw != 0 ? hw : unsigned(spec->num_sms));
    if (std::uint64_t(launch_threads_requested) > cap) {
      std::fprintf(stderr,
                   "dgc-run: note: --launch-threads %lld clamped to %u "
                   "(device has %d SMs, host reports %u hardware threads)\n",
                   (long long)launch_threads_requested, cap, spec->num_sms,
                   hw);
    }
  }
  if (!sweep_counts.empty()) {
    return RunSweepMode(app, loader_args, sweep_counts, jobs, csv_path, *spec,
                        profile, metrics_path,
                        std::uint64_t(profile_interval));
  }
  sim::Device device(*spec);
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  sim::Trace trace{std::size_t(trace_capacity)};
  sim::Memcheck memcheck;
  if (memcheck_on) memcheck.Attach(device.memory());
  const bool profiling = profile || !metrics_path.empty();
  sim::Profiler::Options profiler_options;
  if (profile_interval != 0) {
    profiler_options.sample_interval = std::uint64_t(profile_interval);
  }
  sim::Profiler profiler(profiler_options);
  auto run = ensemble::RunEnsembleCli(env, app, loader_args,
                                      trace_path.empty() ? nullptr : &trace,
                                      memcheck_on ? &memcheck : nullptr,
                                      profiling ? &profiler : nullptr);
  if (!run.ok()) {
    std::fprintf(stderr, "dgc-run: %s\n", run.status().ToString().c_str());
    return 2;
  }
  PrintOutcome(*run, device.spec(), rpc, libc, stats, memcheck_on);
  if (profile) PrintProfile(*run, profiler);
  if (!metrics_path.empty()) {
    ensemble::MetricsInfo info;
    info.app = app;
    info.device = spec->name;
    info.thread_limit = std::uint32_t(
        PeekLoaderInt(loader_args, "-t", "--thread-limit", 1024));
    info.instances = std::uint32_t(run->instances.size());
    info.teams_per_block = std::uint32_t(
        PeekLoaderInt(loader_args, "-m", "--teams-per-block", 1));
    const Status s =
        ensemble::WriteMetricsJson(metrics_path, info, *run, &profiler);
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
    std::printf("metrics written: %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    const Status s = trace.WriteChromeJson(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 2;
    }
    // The dropped count is part of the summary line: a capacity-truncated
    // export must not read as a complete timeline.
    std::printf("trace written: %s (%zu events, %llu dropped)\n",
                trace_path.c_str(), trace.events().size(),
                (unsigned long long)trace.dropped());
    if (trace.dropped() > 0) {
      std::fprintf(stderr,
                   "warning: trace capacity reached — %llu event(s) dropped; "
                   "the exported timeline is incomplete (raise "
                   "--trace-capacity)\n",
                   (unsigned long long)trace.dropped());
    }
  }
  if (memcheck_on && !run->memcheck.clean()) return 1;
  return run->all_ok() ? 0 : 1;
}

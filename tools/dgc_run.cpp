// dgc-run — the command-line front end of the framework, mirroring the
// paper's Fig. 5c invocation:
//
//   dgc-run xsbench -f arguments.txt -n 4 -t 128
//
// plus quality-of-life flags: device selection, single-instance mode, the
// argument-script language, stats reporting, and app discovery.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "gpusim/memcheck.h"
#include "gpusim/trace.h"
#include "support/argparse.h"
#include "support/str.h"
#include "support/units.h"

using namespace dgc;

namespace {

int ListApps() {
  std::printf("device-compiled applications:\n");
  for (const std::string& name : dgcf::AppRegistry::Instance().Names()) {
    auto info = dgcf::AppRegistry::Instance().Find(name);
    std::printf("  %-12s %s\n", name.c_str(), (*info)->description.c_str());
  }
  return 0;
}

StatusOr<sim::DeviceSpec> PickDevice(const std::string& name,
                                     std::int64_t memory_scale) {
  const std::uint32_t scale = std::uint32_t(memory_scale);
  if (name == "a100") return sim::DeviceSpec::A100_40GB(scale);
  if (name == "v100") return sim::DeviceSpec::V100_16GB(scale);
  if (name == "test") return sim::DeviceSpec::TestDevice();
  return Status(ErrorCode::kInvalidArgument,
                "unknown device '" + name + "' (a100, v100, test)");
}

void PrintOutcome(const dgcf::RunResult& run, const sim::DeviceSpec& spec,
                  const dgcf::RpcHost& rpc, const dgcf::DeviceLibc& libc,
                  bool stats, bool memcheck) {
  if (!rpc.stdout_text().empty()) {
    std::printf("%s", rpc.stdout_text().c_str());
  }
  for (std::size_t i = 0; i < run.instances.size(); ++i) {
    const dgcf::InstanceResult& inst = run.instances[i];
    if (!inst.completed) {
      std::printf("instance %zu: CRASHED\n", i);
    } else if (inst.exit_code != 0) {
      std::printf("instance %zu: exit %d\n", i, inst.exit_code);
    }
  }
  std::printf("%zu instance(s), kernel %s cycles (%s), transfers %s cycles\n",
              run.instances.size(), FormatCount(run.kernel_cycles).c_str(),
              FormatSeconds(spec.CyclesToSeconds(run.kernel_cycles)).c_str(),
              FormatCount(run.transfer_cycles).c_str());
  if (stats) std::printf("\n%s", run.stats.ToString().c_str());
  if (stats || libc.failed_allocations() != 0 || libc.failed_frees() != 0) {
    std::printf("device heap: %s live, %s failed mallocs, %s failed frees\n",
                FormatCount(libc.live_allocations()).c_str(),
                FormatCount(libc.failed_allocations()).c_str(),
                FormatCount(libc.failed_frees()).c_str());
  }
  if (memcheck) {
    std::printf("\n%s", run.memcheck.ToString().c_str());
  }
  for (const std::string& f : run.failures) {
    std::fprintf(stderr, "device failure: %s\n", f.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  apps::RegisterAllApps();

  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::printf(
        "usage: dgc-run <app> [options]          run an ensemble (Fig. 5c)\n"
        "       dgc-run --list                   list registered apps\n\n"
        "options forwarded to the ensemble loader:\n"
        "  -f <file>      command line arguments file (required)\n"
        "  -n <count>     instances to launch simultaneously\n"
        "  -t <threads>   thread limit per instance (default 1024)\n"
        "  -m <count>     instances per thread block (default 1)\n"
        "  --teams <n>    teams (default: one per instance)\n"
        "  --script       treat -f file as an argument script\n"
        "  --seed <n>     argument-script random seed\n\n"
        "tool options (must precede the loader options):\n"
        "  --device <d>   a100 (default), v100, or test\n"
        "  --memory-scale <n>  capacity scale divisor (default 512)\n"
        "  --stats        print simulator statistics\n"
        "  --memcheck     run the shadow-memory sanitizer; findings are\n"
        "                 reported and make the run exit nonzero\n"
        "  --trace <path> write a chrome://tracing JSON of the kernel\n");
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "--list") return ListApps();

  const std::string app = args[0];
  args.erase(args.begin());

  // Split off tool options (anything before the first loader flag we know).
  std::string device_name = "a100";
  std::string trace_path;
  std::int64_t memory_scale = 512;
  bool stats = false;
  bool memcheck_on = false;
  std::vector<std::string> loader_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--device" && i + 1 < args.size()) {
      device_name = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--memory-scale" && i + 1 < args.size()) {
      auto v = ParseInt(args[++i]);
      if (!v.ok() || *v <= 0) {
        std::fprintf(stderr, "bad --memory-scale\n");
        return 2;
      }
      memory_scale = *v;
    } else if (args[i] == "--stats") {
      stats = true;
    } else if (args[i] == "--memcheck") {
      memcheck_on = true;
    } else {
      loader_args.push_back(args[i]);
    }
  }

  auto spec = PickDevice(device_name, memory_scale);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 2;
  }
  sim::Device device(*spec);
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  sim::Trace trace;
  sim::Memcheck memcheck;
  if (memcheck_on) memcheck.Attach(device.memory());
  auto run = ensemble::RunEnsembleCli(env, app, loader_args,
                                      trace_path.empty() ? nullptr : &trace,
                                      memcheck_on ? &memcheck : nullptr);
  if (!run.ok()) {
    std::fprintf(stderr, "dgc-run: %s\n", run.status().ToString().c_str());
    return 2;
  }
  PrintOutcome(*run, device.spec(), rpc, libc, stats, memcheck_on);
  if (!trace_path.empty()) {
    const Status s = trace.WriteChromeJson(trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 2;
    }
    std::printf("trace written: %s (%zu events)\n", trace_path.c_str(),
                trace.events().size());
  }
  if (memcheck_on && !run->memcheck.clean()) return 1;
  return run->all_ok() ? 0 : 1;
}

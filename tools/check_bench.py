#!/usr/bin/env python3
"""Gate a google-benchmark run against the checked-in BENCH_sim_speed.json.

Usage:
    check_bench.py BASELINE_JSON RESULT_JSON [--key release_lto]
                   [--tolerance PCT] [--benchmark NAME]
    check_bench.py BASELINE_JSON RESULT_JSON \
        --ratio-benchmark BM_EnsembleLaunchXsbenchThreaded --ratio-max 1.10
    check_bench.py BASELINE_JSON RESULT_JSON --key amgmk_release_lto \
        --benchmark BM_EnsembleLaunchAmgmk \
        --ratio-benchmark BM_EnsembleLaunchAmgmkThreaded --ratio-max 1.10

Both gates echo the baseline's `capture_host_cores` so single-core-capture
ratio waivers are visible in every gate log.

BASELINE_JSON is the repo's BENCH_sim_speed.json (schema dgc-bench-v1).
RESULT_JSON is `micro_benchmarks --benchmark_format=json` output; aggregate
entries (--benchmark_report_aggregates_only) are preferred — the `_median`
rows are used when present, otherwise the plain per-repetition rows.

A point fails when its measured time is out of tolerance in EITHER
direction (the baseline's `tolerance_pct` unless overridden): slower is a
regression, and faster means the committed baseline is stale and must be
re-pinned — a drifting baseline silently widens the window a real
regression can hide in. Exit code is 1 if any point is out of tolerance,
else 0. Pass --allow-faster to accept improvements without failing (e.g.
on a one-off machine faster than the pinned reference).

--ratio-benchmark gates a second benchmark RELATIVE to the baseline
benchmark within the SAME result file, point by point: measured ratio
(ratio_benchmark / baseline_benchmark) must stay <= --ratio-max. This is
how the threaded launch engine is gated: absolute times vary wildly
across runner hardware, but the ratio contract is host-aware — CI passes
a ratio-max below 1.0 on multi-core runners (the overlap must win) and a
small tolerance above 1.0 on single-core runners, where SpecTeam spawns
no workers and the windowed engine may only cost bounded overhead.
"""

import argparse
import json
import sys


def load_results(path, bench_name):
    """Returns {instance_count: time_ms} from google-benchmark JSON."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("benchmarks", [])
    medians = {}
    plain = {}
    for row in rows:
        name = row.get("name", "")
        if not name.startswith(bench_name + "/"):
            continue
        time_ms = float(row["real_time"])
        unit = row.get("time_unit", "ms")
        if unit == "ns":
            time_ms /= 1e6
        elif unit == "us":
            time_ms /= 1e3
        if name.endswith("_median"):
            arg = name[len(bench_name) + 1:].split("_")[0]
            medians[arg] = time_ms
        elif "_" not in name[len(bench_name) + 1:]:
            arg = name[len(bench_name) + 1:]
            # Plain rows repeat per repetition; keep the minimum (least
            # scheduler noise) when no aggregate rows exist.
            plain[arg] = min(plain.get(arg, float("inf")), time_ms)
    return medians if medians else plain


def describe_capture_host(base_doc):
    """One line documenting the baseline capture host's core count.

    The committed threaded-vs-serial ratios are only meaningful relative
    to the parallelism of the machine that produced them (a single-core
    capture can only pin the degradation bound); echoing the count makes
    every gate log self-documenting instead of relying on the `note`.
    """
    cores = base_doc.get("capture_host_cores")
    if cores is None:
        return "baseline capture host cores: unrecorded (pre-v10 baseline)"
    return f"baseline captured on a {int(cores)}-core host"


def ratio_gate(args, bench_name, serial_results, base_doc):
    """Point-by-point relative gate: ratio benchmark vs baseline benchmark."""
    ratio_results = load_results(args.results, args.ratio_benchmark)
    if not ratio_results:
        sys.exit(f"error: no '{args.ratio_benchmark}' rows in {args.results}")
    print(f"{args.ratio_benchmark} vs {bench_name} in {args.results} "
          f"(max ratio {args.ratio_max:.2f}; {describe_capture_host(base_doc)})")
    failed = []
    for arg in sorted(ratio_results, key=int):
        if arg not in serial_results:
            print(f"  /{arg}: no matching {bench_name} point, skipped")
            continue
        ratio = ratio_results[arg] / serial_results[arg]
        verdict = "ok" if ratio <= args.ratio_max else "FAIL"
        if ratio > args.ratio_max:
            failed.append(arg)
        print(f"  /{arg}: serial={serial_results[arg]:.2f}ms "
              f"threaded={ratio_results[arg]:.2f}ms ratio={ratio:.3f} "
              f"{verdict}")
    if failed:
        print(f"FAIL: {len(failed)} point(s) above ratio "
              f"{args.ratio_max:.2f}: {', '.join('/' + a for a in failed)}")
        return 1
    print("PASS")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("results")
    ap.add_argument("--key", default="release_lto",
                    help="baseline table to gate against (default: %(default)s)")
    ap.add_argument("--benchmark", default=None,
                    help="benchmark series name to gate (default: the "
                         "baseline's `benchmark` field; needed for the "
                         "secondary series, e.g. BM_EnsembleLaunchAmgmk "
                         "with --key amgmk_release_lto)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="allowed deviation in percent, either direction "
                         "(default: baseline tolerance_pct)")
    ap.add_argument("--allow-faster", action="store_true",
                    help="report out-of-tolerance improvements without "
                         "failing (default: fail so the baseline is "
                         "re-pinned)")
    ap.add_argument("--ratio-benchmark", default=None,
                    help="gate this benchmark's time relative to the "
                         "baseline benchmark in the same result file "
                         "instead of against the pinned table")
    ap.add_argument("--ratio-max", type=float, default=1.0,
                    help="maximum allowed (ratio benchmark / baseline "
                         "benchmark) per point (default: %(default)s)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base_doc = json.load(f)
    if base_doc.get("schema") != "dgc-bench-v1":
        sys.exit(f"error: {args.baseline} is not a dgc-bench-v1 document")
    bench_name = args.benchmark or base_doc["benchmark"]
    baseline = base_doc[args.key]
    tol = args.tolerance if args.tolerance is not None \
        else float(base_doc.get("tolerance_pct", 15))

    results = load_results(args.results, bench_name)
    if not results:
        sys.exit(f"error: no '{bench_name}' rows in {args.results}")

    if args.ratio_benchmark:
        return ratio_gate(args, bench_name, results, base_doc)

    regressed = []
    stale = []
    print(f"{bench_name} vs {args.baseline}:{args.key} "
          f"(tolerance {tol:.0f}%, either direction; "
          f"{describe_capture_host(base_doc)})")
    for arg in sorted(baseline, key=int):
        base = float(baseline[arg])
        if arg not in results:
            print(f"  /{arg}: MISSING from results")
            regressed.append(arg)
            continue
        got = results[arg]
        delta = (got - base) / base * 100.0
        verdict = "ok"
        if delta > tol:
            verdict = "REGRESSION"
            regressed.append(arg)
        elif delta < -tol:
            if args.allow_faster:
                verdict = "faster (allowed by --allow-faster)"
            else:
                verdict = "STALE BASELINE (faster than pinned)"
                stale.append(arg)
        print(f"  /{arg}: baseline={base:.2f}ms measured={got:.2f}ms "
              f"({delta:+.1f}%) {verdict}")

    if regressed:
        print(f"FAIL: {len(regressed)} point(s) regressed beyond "
              f"{tol:.0f}%: {', '.join('/' + a for a in regressed)}")
    if stale:
        print(f"FAIL: {len(stale)} point(s) faster than baseline beyond "
              f"{tol:.0f}%: {', '.join('/' + a for a in stale)} — the "
              f"committed baseline is stale; re-pin {args.baseline} from "
              f"this run (or pass --allow-faster for a one-off machine)")
    if regressed or stale:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// dgc-serve — the long-running ensemble service front end.
//
// Consumes a stream of jobs (one app invocation per line), packs
// compatible jobs into ensemble launches under occupancy + memory
// admission control, and survives bad jobs, overload bursts, and
// shutdown signals with bounded, deterministic behavior:
//
//   dgc-serve --stream jobs.txt --device test -t 32 --queue-cap 8
//   dgc-serve --stream - < jobs.fifo     # follow mode: stdin, SIGTERM drains
//
// With a job-stream file the run is fully replayable: same stream + same
// --chaos seed ⇒ byte-identical outcome log and metrics sidecars, for any
// --jobs value. In follow mode arrival cycles depend on when input shows
// up, so replay determinism applies per-batch, not across the run.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "apps/common.h"
#include "serve/scheduler.h"
#include "serve/stream.h"
#include "support/argparse.h"
#include "support/str.h"
#include "support/units.h"

using namespace dgc;

namespace {

volatile std::sig_atomic_t g_drain = 0;

void OnDrainSignal(int) { g_drain = 1; }

/// SIGTERM/SIGINT begin a graceful drain. No SA_RESTART: a blocking
/// poll() on stdin returns EINTR so the follow loop notices promptly.
void InstallDrainHandler() {
  struct sigaction action = {};
  action.sa_handler = OnDrainSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

StatusOr<sim::DeviceSpec> PickDevice(const std::string& name,
                                     std::int64_t memory_scale) {
  const std::uint32_t scale = std::uint32_t(memory_scale);
  if (name == "a100") return sim::DeviceSpec::A100_40GB(scale);
  if (name == "v100") return sim::DeviceSpec::V100_16GB(scale);
  if (name == "test") return sim::DeviceSpec::TestDevice();
  return Status(ErrorCode::kInvalidArgument,
                "unknown device '" + name + "' (a100, v100, test)");
}

int Usage(int code) {
  std::printf(
      "usage: dgc-serve --stream <file> [options]\n"
      "  Runs a job-stream ensemble service: each line of the stream is\n"
      "  [@at=<cycle>] [@deadline=<cycles>] [@prio=<n>] <app> [argv...]\n"
      "  --stream -  reads stdin in follow mode (SIGTERM/SIGINT drain).\n\n"
      "device:\n"
      "  --device <d>           a100 (default), v100, or test\n"
      "  --memory-scale <n>     capacity scale divisor (default 512)\n"
      "  --devices <n>          independent device slots (default 1)\n"
      "  --jobs <n>             host threads simulating concurrent launches\n"
      "                         (default 1; any value, same output)\n\n"
      "packing and admission:\n"
      "  -t <threads>           thread limit per job (default 128)\n"
      "  -m <count>             jobs per thread block (default 1)\n"
      "  --queue-cap <n>        bounded queue capacity (default 16)\n"
      "  --max-batch <n>        jobs per launch cap (0 = occupancy cap)\n"
      "  --mem-estimate <bytes> initial per-job footprint estimate\n"
      "                         (default 1048576; observation tightens it)\n"
      "  --headroom <pct>       device memory the packer may plan into\n"
      "                         (default 90)\n"
      "  --share-data <on|off>  shared read-only inputs across identical\n"
      "                         jobs (default on)\n\n"
      "robustness:\n"
      "  --job-attempts <n>     service-level attempts per job (default 1)\n"
      "  --backoff <cycles>     retry backoff base, doubles per attempt\n"
      "                         (default 4096)\n"
      "  --launch-retry <n>     within-launch retry waves (default 1)\n"
      "  --retry-shrink <n>     team-cap divisor per retry wave (default 2)\n"
      "  --quarantine-after <k> consecutive failures that open an app's\n"
      "                         circuit breaker (default 3; 0 = off)\n"
      "  --quarantine-cooldown <cycles>  breaker cooldown before a probe\n"
      "                         (default 65536)\n"
      "  --watchdog <cycles>    per-launch budget (0 = device default)\n"
      "  --instance-watchdog <cycles>  per-job budget cap (0 = off)\n"
      "  --chaos <spec>         seeded service-level fault schedule, e.g.\n"
      "                         'seed@7;malformed@3;trap@p10;slow@2.x8'\n"
      "  --drain-at <cycle>     scripted graceful drain (deterministic\n"
      "                         stand-in for SIGTERM)\n\n"
      "output:\n"
      "  --log <path>           outcome log sink (default stdout)\n"
      "  --metrics-json <prefix>  one dgc-metrics-v1 sidecar per launch:\n"
      "                         <prefix>.launch<N>.json\n\n"
      "exit status: 0 = every admitted job succeeded; 1 = an admitted job\n"
      "failed, missed its deadline, or exited nonzero; 2 = usage error.\n");
  return code;
}

/// Follow mode: read stdin incrementally, enqueue each complete batch of
/// lines at the current virtual time, and run the loop dry between reads.
/// An unparseable line becomes an unregistered-app submission so it flows
/// through the normal malformed-rejection path (logged and counted).
int FollowStdin(serve::Scheduler& scheduler) {
  std::string carry;
  bool eof = false;
  while (!eof && g_drain == 0) {
    struct pollfd fd = {0, POLLIN, 0};
    const int ready = poll(&fd, 1, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_drain
      break;
    }
    char chunk[4096];
    const ssize_t n = read(0, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
    } else {
      carry.append(chunk, std::size_t(n));
    }
    std::vector<serve::JobRequest> batch;
    auto take_line = [&batch](std::string_view line) {
      auto requests = serve::ParseJobStream(line);
      if (requests.ok()) {
        for (auto& r : *requests) batch.push_back(std::move(r));
      } else {
        std::fprintf(stderr, "dgc-serve: %s\n",
                     requests.status().message().c_str());
        serve::JobRequest bad;
        bad.app = "<unparseable>";
        batch.push_back(std::move(bad));
      }
    };
    std::size_t pos;
    while ((pos = carry.find('\n')) != std::string::npos) {
      take_line(std::string_view(carry).substr(0, pos));
      carry.erase(0, pos + 1);
    }
    if (eof && !carry.empty()) {
      take_line(carry);
      carry.clear();
    }
    scheduler.EnqueueStream(batch);
    const Status run = scheduler.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "dgc-serve: %s\n", run.ToString().c_str());
      return 1;
    }
  }
  if (g_drain != 0) scheduler.RequestDrain();
  const Status run = scheduler.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n", run.ToString().c_str());
    return 1;
  }
  return scheduler.WriteReport().ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  apps::RegisterAllApps();

  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") return Usage(0);
  }
  if (args.empty()) return Usage(2);

  std::string stream_path;
  std::string device_name = "a100";
  std::int64_t memory_scale = 512;
  std::int64_t devices = 1, jobs = 1;
  std::int64_t thread_limit = 128, teams_per_block = 1;
  std::int64_t queue_cap = 16, max_batch = 0;
  std::int64_t mem_estimate = std::int64_t(1) << 20;
  double headroom = 90.0;
  std::int64_t job_attempts = 1, backoff = 4096;
  std::int64_t launch_retry = 1, retry_shrink = 2;
  std::int64_t quarantine_after = 3, quarantine_cooldown = 65536;
  std::int64_t watchdog = 0, instance_watchdog = 0;
  std::string share_data = "on";
  std::string chaos_spec;
  std::int64_t drain_at = 0;
  std::string log_path, metrics_prefix;

  ArgParser parser("job-stream ensemble service");
  parser.AddString("stream", 0, "job stream file ('-' = stdin follow mode)",
                   &stream_path, /*required=*/true)
      .AddString("device", 0, "a100, v100, or test", &device_name)
      .AddInt("memory-scale", 0, "capacity scale divisor", &memory_scale)
      .AddInt("devices", 0, "independent device slots", &devices)
      .AddInt("jobs", 0, "host threads for concurrent launches", &jobs)
      .AddInt("thread-limit", 't', "thread limit per job", &thread_limit)
      .AddInt("teams-per-block", 'm', "jobs per thread block",
              &teams_per_block)
      .AddInt("queue-cap", 0, "bounded queue capacity", &queue_cap)
      .AddInt("max-batch", 0, "jobs per launch cap (0 = occupancy)",
              &max_batch)
      .AddInt("mem-estimate", 0, "initial per-job footprint estimate",
              &mem_estimate)
      .AddDouble("headroom", 0, "planable device memory, percent", &headroom)
      .AddInt("job-attempts", 0, "service-level attempts per job",
              &job_attempts)
      .AddInt("backoff", 0, "retry backoff base cycles", &backoff)
      .AddInt("launch-retry", 0, "within-launch retry waves", &launch_retry)
      .AddInt("retry-shrink", 0, "team-cap divisor per retry wave",
              &retry_shrink)
      .AddInt("quarantine-after", 0, "failures that open the breaker",
              &quarantine_after)
      .AddInt("quarantine-cooldown", 0, "breaker cooldown cycles",
              &quarantine_cooldown)
      .AddInt("watchdog", 0, "per-launch cycle budget (0 = default)",
              &watchdog)
      .AddInt("instance-watchdog", 0, "per-job cycle budget cap (0 = off)",
              &instance_watchdog)
      .AddString("share-data", 0, "share read-only inputs (on|off)",
                 &share_data)
      .AddString("chaos", 0, "service-level fault schedule", &chaos_spec)
      .AddInt("drain-at", 0, "scripted drain cycle (0 = none)", &drain_at)
      .AddString("log", 0, "outcome log path (default stdout)", &log_path)
      .AddString("metrics-json", 0, "per-launch metrics sidecar prefix",
                 &metrics_prefix);
  const Status parsed = parser.Parse(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n\n", parsed.ToString().c_str());
    return Usage(2);
  }
  if (devices <= 0 || jobs < 0 || thread_limit <= 0 || teams_per_block <= 0 ||
      queue_cap <= 0 || max_batch < 0 || mem_estimate <= 0 ||
      job_attempts <= 0 || backoff < 0 || launch_retry <= 0 ||
      retry_shrink < 0 || quarantine_after < 0 || quarantine_cooldown < 0 ||
      watchdog < 0 || instance_watchdog < 0 || drain_at < 0 ||
      memory_scale <= 0 || headroom <= 0.0 || headroom > 100.0) {
    std::fprintf(stderr, "dgc-serve: flag out of range\n\n");
    return Usage(2);
  }
  if (share_data != "on" && share_data != "off") {
    std::fprintf(stderr, "dgc-serve: --share-data must be 'on' or 'off'\n\n");
    return Usage(2);
  }

  serve::ServeConfig config;
  auto spec = PickDevice(device_name, memory_scale);
  if (!spec.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n\n", spec.status().ToString().c_str());
    return Usage(2);
  }
  config.spec = *spec;
  config.thread_limit = std::uint32_t(thread_limit);
  config.teams_per_block = std::uint32_t(teams_per_block);
  config.devices = std::uint32_t(devices);
  config.jobs = unsigned(jobs);
  config.queue_capacity = std::size_t(queue_cap);
  config.admission.max_batch = std::uint32_t(max_batch);
  config.admission.default_estimate = std::uint64_t(mem_estimate);
  config.admission.headroom = headroom / 100.0;
  config.retry.job_attempts = std::uint32_t(job_attempts);
  config.retry.backoff_base = std::uint64_t(backoff);
  config.breaker.failure_threshold = std::uint32_t(quarantine_after);
  config.breaker.cooldown = std::uint64_t(quarantine_cooldown);
  config.launch_attempts = std::uint32_t(launch_retry);
  config.retry_shrink = std::uint32_t(retry_shrink);
  config.watchdog_cycles = std::uint64_t(watchdog);
  config.instance_watchdog_cycles = std::uint64_t(instance_watchdog);
  config.share_data = share_data == "on";
  config.drain_at = std::uint64_t(drain_at);
  config.metrics_prefix = metrics_prefix;
  if (!chaos_spec.empty()) {
    auto chaos = serve::ChaosPlan::Parse(chaos_spec);
    if (!chaos.ok()) {
      std::fprintf(stderr, "dgc-serve: %s\n\n",
                   chaos.status().ToString().c_str());
      return Usage(2);
    }
    config.chaos = *chaos;
  }

  std::ofstream log_file;
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::binary);
    if (!log_file) {
      std::fprintf(stderr, "dgc-serve: cannot open log: %s\n",
                   log_path.c_str());
      return 2;
    }
    config.log = &log_file;
  } else {
    config.log = &std::cout;
  }

  const bool follow = stream_path == "-";
  InstallDrainHandler();
  config.drain_poll = [] { return g_drain != 0; };

  serve::Scheduler scheduler(std::move(config));
  const Status init = scheduler.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n\n", init.ToString().c_str());
    return Usage(2);
  }

  if (follow) return FollowStdin(scheduler);

  // File mode: the stream is validated up front (a parse error is a usage
  // error before any work starts) and replayed deterministically.
  auto requests = serve::LoadJobStream(stream_path);
  if (!requests.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n\n",
                 requests.status().ToString().c_str());
    return Usage(2);
  }
  scheduler.EnqueueStream(*requests);
  const Status run = scheduler.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "dgc-serve: %s\n", run.ToString().c_str());
    return 1;
  }
  return scheduler.WriteReport().ok() ? 0 : 1;
}

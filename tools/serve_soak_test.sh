#!/usr/bin/env bash
# serve-soak: a seeded chaos replay of faulty and well-behaved jobs through
# dgc-serve, with the queue deliberately over capacity. The outcome log must
# be byte-identical across --jobs values and must match the committed golden
# transcript; the exit code must reflect the chaos-failed jobs.
set -u
BIN=$1
STREAM=$2
GOLDEN=$3
OUT=$4
mkdir -p "$OUT"

FLAGS=(--stream "$STREAM" --device test -t 32 --queue-cap 4
       --job-attempts 2 --backoff 4096 --quarantine-after 3
       --chaos 'seed@7;trap@2;malformed@5;slow@4.x4')

"$BIN" "${FLAGS[@]}" --jobs 1 --log "$OUT/jobs1.log" >/dev/null
rc1=$?
"$BIN" "${FLAGS[@]}" --jobs 4 --log "$OUT/jobs4.log" >/dev/null
rc4=$?

# The chaos-trapped job exhausts its attempts, so the service must report
# failure — an exit-0 soak run means faults stopped being detected.
if [ "$rc1" != 1 ] || [ "$rc4" != 1 ]; then
  echo "serve-soak: expected exit 1 from both runs, got $rc1 and $rc4"
  exit 1
fi
if ! cmp -s "$OUT/jobs1.log" "$OUT/jobs4.log"; then
  echo "serve-soak: --jobs changed the outcome log"
  diff -u "$OUT/jobs1.log" "$OUT/jobs4.log" | head -40
  exit 1
fi
if ! cmp -s "$OUT/jobs1.log" "$GOLDEN"; then
  echo "serve-soak: outcome log diverged from the golden transcript"
  diff -u "$GOLDEN" "$OUT/jobs1.log" | head -60
  exit 1
fi
echo "serve-soak: ok"

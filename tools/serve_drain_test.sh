#!/usr/bin/env bash
# SIGTERM drain contract: a dgc-serve following stdin must, on SIGTERM,
# finish in-flight work, write the final report, and exit with a code that
# reflects job outcomes (0 here: the only admitted job succeeds).
set -u
BIN=$1
OUT=$2
mkdir -p "$OUT"
fifo="$OUT/stream.fifo"
rm -f "$fifo"
mkfifo "$fifo"

"$BIN" --stream - --device test -t 32 --log "$OUT/drain.log" \
  <"$fifo" >"$OUT/drain.out" 2>&1 &
pid=$!
exec 3>"$fifo"
printf 'rsbench -u 6 -w 4 -l 64 -s 1\n' >&3
sleep 1
kill -TERM "$pid"
exec 3>&-
wait "$pid"
rc=$?
rm -f "$fifo"

if ! grep -q 'done job=0 outcome=succeeded' "$OUT/drain.log"; then
  echo "serve-drain: in-flight job did not run to completion"
  cat "$OUT/drain.log"
  exit 1
fi
if ! grep -q 'drained=1' "$OUT/drain.log"; then
  echo "serve-drain: final report does not record the drain"
  cat "$OUT/drain.log"
  exit 1
fi
if [ "$rc" != 0 ]; then
  echo "serve-drain: expected exit 0 after a clean drain, got $rc"
  exit 1
fi
echo "serve-drain: ok"

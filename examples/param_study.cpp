// Parameter study with the argument-script language (the paper's §3.2/§6
// future work): one script line fans out into a Page-Rank damping-factor
// sweep, executed as a single ensemble.
//
//   $ ./param_study
#include <cstdio>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/argscript.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

using namespace dgc;

int main() {
  apps::RegisterAllApps();

  // One template line → 8 instances: damping 0.05·{seq 10 17} percent-ish;
  // pagerank takes -a as a double, so generate tenths via arithmetic.
  const char* script =
      "# damping sweep: a = 0.50 .. 0.85, two seeds each\n"
      "@seed 7\n"
      "@repeat 8 : -g 20000 -d 6 -a 0.{seq 50 85 5} -s {i%2+1} -v\n";

  auto expanded = ensemble::ExpandScript(script);
  DGC_CHECK_MSG(expanded.ok(), expanded.status().ToString());
  std::printf("expanded argument file:\n%s\n", expanded->c_str());

  auto instance_args = ensemble::ExpandScriptToArgs(script);
  DGC_CHECK(instance_args.ok());

  sim::Device device(sim::DeviceSpec::A100_40GB(512));
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};

  ensemble::EnsembleOptions opt;
  opt.app = "pagerank";
  opt.instance_args = *instance_args;
  opt.thread_limit = 256;
  auto run = ensemble::RunEnsemble(env, opt);
  DGC_CHECK_MSG(run.ok(), run.status().ToString());

  std::printf("study results (%zu instances, one kernel, %llu cycles):\n",
              run->instances.size(), (unsigned long long)run->kernel_cycles);
  for (std::size_t i = 0; i < run->instances.size(); ++i) {
    std::printf("  instance %zu: %-22s exit=%d\n", i,
                Join((*instance_args)[i], " ").c_str(),
                run->instances[i].exit_code);
  }
  std::printf("\ndevice stdout (per-instance verification lines):\n%s",
              rpc.stdout_text().c_str());
  return run->all_ok() ? 0 : 1;
}

// §3.1's multi-dimensional mapping as a user-facing feature: pack M
// instances into each thread block (block shape (T, M, 1)) so that
// low-parallelism instances share blocks instead of each occupying one.
//
//   $ ./multidim_packing
#include <cstdio>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

using namespace dgc;

int main() {
  apps::RegisterAllApps();
  const std::uint32_t kInstances = 64;
  const std::uint32_t kThreadLimit = 16;  // deliberately tiny instances

  // A device where block slots are scarce, as on a smaller part.
  sim::DeviceSpec spec = sim::DeviceSpec::A100_40GB(512);
  spec.num_sms = 4;
  spec.max_blocks_per_sm = 4;

  std::printf("%u rsbench instances, %u threads each, on a 4-SM device\n\n",
              kInstances, kThreadLimit);
  std::printf("%-4s %-8s %-14s %s\n", "M", "blocks", "kernel cycles",
              "vs M=1");

  std::uint64_t base = 0;
  for (std::uint32_t m : {1u, 2u, 4u}) {
    sim::Device device(spec);
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};

    ensemble::EnsembleOptions opt;
    opt.app = "rsbench";
    for (std::uint32_t i = 0; i < kInstances; ++i) {
      opt.instance_args.push_back({"-u", "6", "-w", "4", "-p", "4", "-l",
                                   "128", "-s", StrFormat("%u", i + 1)});
    }
    opt.thread_limit = kThreadLimit;
    opt.teams_per_block = m;  // the §3.1 mapping
    auto run = ensemble::RunEnsemble(env, opt);
    DGC_CHECK_MSG(run.ok(), run.status().ToString());
    DGC_CHECK_MSG(run->all_ok(), "an instance failed");
    if (m == 1) base = run->kernel_cycles;
    std::printf("%-4u %-8u %-14llu %.2fx\n", m, kInstances / m,
                (unsigned long long)run->kernel_cycles,
                double(base) / double(run->kernel_cycles));
  }
  std::printf("\nevery instance still verifies against its host reference "
              "under every mapping\n");
  return 0;
}

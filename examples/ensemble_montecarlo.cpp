// Ensemble Monte-Carlo: the paper's motivating scenario (§1) — many
// independent simulation trajectories analysed together. Runs 16 XSBench
// instances (OpenMC's lookup proxy), each with a different seed, in one
// kernel launch, and compares against running them back to back.
//
//   $ ./ensemble_montecarlo
#include <cstdio>

#include "apps/common.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "support/str.h"

using namespace dgc;

int main() {
  apps::RegisterAllApps();
  const std::uint32_t kTrajectories = 16;
  const std::uint32_t kThreadLimit = 64;

  auto args_for = [](std::uint32_t i) {
    return std::vector<std::string>{"-i", "16",  "-g", "128", "-l", "1024",
                                    "-s", StrFormat("%u", i + 1)};
  };

  // --- Back-to-back single-instance runs (the pre-ensemble workflow) ------
  std::uint64_t serial_cycles = 0;
  {
    sim::Device device(sim::DeviceSpec::A100_40GB(512));
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    for (std::uint32_t i = 0; i < kTrajectories; ++i) {
      dgcf::SingleRunOptions opt{.app = "xsbench", .args = args_for(i),
                                 .thread_limit = kThreadLimit};
      auto run = dgcf::RunSingleInstance(env, opt);
      DGC_CHECK(run.ok());
      DGC_CHECK_MSG(run->all_ok(), "trajectory failed verification");
      serial_cycles += run->total_cycles();
    }
  }

  // --- One ensemble launch -------------------------------------------------
  std::uint64_t ensemble_cycles = 0;
  {
    sim::Device device(sim::DeviceSpec::A100_40GB(512));
    dgcf::RpcHost rpc(device);
    dgcf::DeviceLibc libc(device);
    dgcf::AppEnv env{&device, &rpc, &libc};
    ensemble::EnsembleOptions opt;
    opt.app = "xsbench";
    for (std::uint32_t i = 0; i < kTrajectories; ++i) {
      opt.instance_args.push_back(args_for(i));
    }
    opt.thread_limit = kThreadLimit;
    auto run = ensemble::RunEnsemble(env, opt);
    DGC_CHECK(run.ok());
    DGC_CHECK_MSG(run->all_ok(), "an ensemble instance failed verification");
    ensemble_cycles = run->total_cycles();
  }

  const auto& spec = sim::DeviceSpec::A100_40GB(512);
  std::printf("%u XSBench trajectories, thread limit %u\n", kTrajectories,
              kThreadLimit);
  std::printf("  back-to-back : %12llu cycles (%s)\n",
              (unsigned long long)serial_cycles,
              FormatSeconds(spec.CyclesToSeconds(serial_cycles)).c_str());
  std::printf("  one ensemble : %12llu cycles (%s)\n",
              (unsigned long long)ensemble_cycles,
              FormatSeconds(spec.CyclesToSeconds(ensemble_cycles)).c_str());
  std::printf("  speedup      : %.1fx\n",
              double(serial_cycles) / double(ensemble_cycles));
  return 0;
}

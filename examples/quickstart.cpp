// Quickstart: compile an application "for the device", run it once through
// the classic single-instance loader, then run four instances at once with
// the ensemble loader — the end-to-end flow of the paper's Fig. 5.
//
//   $ ./quickstart
#include <cstdio>

#include "dgcf/app.h"
#include "dgcf/libc.h"
#include "dgcf/loader.h"
#include "dgcf/rpc.h"
#include "ensemble/loader.h"
#include "gpusim/device.h"
#include "ompx/team.h"
#include "support/str.h"

using namespace dgc;

// ---------------------------------------------------------------------------
// The "legacy CPU application": estimates pi by integrating 4/(1+x^2) with
// the midpoint rule over -n intervals. main() is written like a host
// program: parse argv, allocate, compute (with an OpenMP-style parallel
// loop), print, return an exit code.
// ---------------------------------------------------------------------------
sim::DeviceTask<int> PiMain(dgcf::AppEnv& env, ompx::TeamCtx& team, int argc,
                            dgcf::DeviceArgv argv) {
  std::uint64_t intervals = 1 << 14;
  for (int i = 1; i < argc; ++i) {
    if (dgcf::DeviceLibc::StrCmp(argv[i], "-n") == 0 && i + 1 < argc) {
      intervals = std::uint64_t(std::strtoll(
          dgcf::DeviceLibc::ToString(argv[++i]).c_str(), nullptr, 10));
    } else {
      co_return dgcf::kExitUsage;
    }
  }

  double pi = 0.0;
  co_await ompx::Parallel(
      team, [&](sim::ThreadCtx& ctx, std::uint32_t rank,
                std::uint32_t size) -> sim::DeviceTask<void> {
        const double h = 1.0 / double(intervals);
        double local = 0.0;
        for (std::uint64_t k = rank; k < intervals; k += size) {
          const double x = (double(k) + 0.5) * h;
          local += 4.0 / (1.0 + x * x);
          if ((k / size) % 64 == 63) co_await ctx.Work(256);  // 64 iters of FLOPs
        }
        const double total = co_await ompx::TeamReduceSum(team, local * h);
        if (rank == 0) pi = total;
      });

  co_await env.rpc->Print(
      *team.hw, StrFormat("pi(%llu intervals) = %.10f\n",
                          (unsigned long long)intervals, pi));
  co_return dgcf::kExitOk;
}

int main() {
  // "Compile for the device": register the canonicalized __user_main.
  dgcf::AppRegistry::Instance().Register(
      {"pi", "midpoint-rule pi estimator", PiMain});

  sim::Device device(sim::DeviceSpec::A100_40GB());
  dgcf::RpcHost rpc(device);
  dgcf::DeviceLibc libc(device);
  dgcf::AppEnv env{&device, &rpc, &libc};
  std::printf("device: %s\n\n", device.spec().name.c_str());

  // --- 1. The original direct-GPU-compilation flow: one instance ----------
  dgcf::SingleRunOptions single{.app = "pi", .args = {"-n", "16384"},
                                .thread_limit = 128};
  auto run1 = dgcf::RunSingleInstance(env, single);
  DGC_CHECK(run1.ok());
  std::printf("single instance: exit=%d, %llu device cycles\n",
              run1->instances[0].exit_code,
              (unsigned long long)run1->total_cycles());

  // --- 2. The ensemble loader: four instances in ONE kernel ---------------
  ensemble::EnsembleOptions opt;
  opt.app = "pi";
  for (int i = 0; i < 4; ++i) {
    opt.instance_args.push_back({"-n", StrFormat("%d", 4096 << i)});
  }
  opt.thread_limit = 128;
  auto run4 = ensemble::RunEnsemble(env, opt);
  DGC_CHECK(run4.ok());
  std::printf("ensemble of 4:   all ok=%d, %llu device cycles (one launch)\n",
              int(run4->all_ok()), (unsigned long long)run4->total_cycles());

  std::printf("\ndevice stdout:\n%s", rpc.stdout_text().c_str());

  const double speedup = double(run1->kernel_cycles) * 4.0 /
                         double(run4->kernel_cycles);
  std::printf("\nnaive speedup vs 4 serial runs of the largest size: ~%.1fx\n",
              speedup);
  return 0;
}
